//! Differential suite for batched replay (tpcheck).
//!
//! The engine's default path pulls fixed-size blocks straight from the
//! packed SoA trace arrays and hoists every per-access branch of the
//! serial loop to a per-block decision (`Engine::run_batched`). The
//! refactor's contract is absolute: **any batch size produces reports
//! byte-identical to the serial reference loop** (`batch_size(1)`), for
//! any config, workload mix, core count, or warmup fraction — batching
//! is a pure speed knob with no observable semantics.
//!
//! Three angles pin it:
//!
//! 1. **Fuzzed differential runs** — random (config × mix × core-count
//!    × batch-size) experiments, with the batch drawn from the edge
//!    cases that stress the block-cap clamps: tiny odd blocks (7), the
//!    default (256), and a single block covering a whole trace pass
//!    (`len + 1`). Serial and batched fingerprints (every counter, plus
//!    the conservation-law audit) must match exactly.
//! 2. **Pinned batch ladder** — one fixed prefetching config replayed
//!    at every edge batch size; all reports equal the serial one.
//! 3. **Cancellation under batching** — a cancelled token still aborts
//!    the run, an uncancelled token still changes nothing, and the
//!    token-poll cadence stays at epoch granularity: a block may defer
//!    a poll past a `CANCEL_EPOCH` multiple by at most one block
//!    length, never collapse polling.

use streamline_repro::prelude::*;
use streamline_repro::tpsim::{CancelToken, CANCEL_EPOCH};
use streamline_repro::tptrace::Mix;
use tpcheck::{check, ensure, Gen};

const L1_KINDS: [L1Kind; 3] = [L1Kind::None, L1Kind::Stride, L1Kind::Berti];
const L2_KINDS: [L2Kind; 4] = [L2Kind::None, L2Kind::Ipcp, L2Kind::Bingo, L2Kind::SppPpf];

/// A random experiment at test scale, biased toward configurations that
/// exercise every hoisted branch: the temporal prefetcher is always on
/// (metadata traffic, feedback, LLC sampling) and warmup 0.0 is in the
/// pool (the zero-warmup fast path skips the warmup clamp entirely).
fn random_experiment(g: &mut Gen) -> Experiment {
    let temporal = [
        TemporalKind::Ideal,
        TemporalKind::Triage,
        TemporalKind::Triangel,
        TemporalKind::Streamline,
    ][g.usize_in(0..4)];
    let mut exp = Experiment::new(Scale::Test)
        .l1(L1_KINDS[g.usize_in(0..L1_KINDS.len())])
        .l2(L2_KINDS[g.usize_in(0..L2_KINDS.len())])
        .temporal(temporal);
    exp.warmup = [0.0, 0.2, 0.5][g.usize_in(0..3)];
    exp
}

/// A random 1–2 core mix from the memory-intensive pool (the LLC
/// slicing requires a power-of-two core count).
fn random_mix(g: &mut Gen) -> Mix {
    let pool = workloads::memory_intensive();
    Mix {
        index: 0,
        workloads: (0..g.usize_in(1..3))
            .map(|_| pool[g.usize_in(0..pool.len())].clone())
            .collect(),
    }
}

/// Every simulated number a batching bug could move, as one comparable
/// string: all per-core counters, the shared LLC and DRAM stats, and
/// the conservation-law audit verdict.
fn fingerprint(r: &SimReport) -> String {
    format!(
        "{:?} {:?} {:?} audit(passed={}, checks={}, violations={})",
        r.cores,
        r.llc,
        r.dram,
        r.audit.passed(),
        r.audit.checks,
        r.audit.violations.len()
    )
}

/// The longest trace in the mix, so `len + 1` covers any core's full
/// pass in a single block (the cap clamps must bound it, not the batch).
fn max_trace_len(mix: &Mix) -> usize {
    mix.workloads
        .iter()
        .map(|w| w.generate_shared(Scale::Test).len())
        .max()
        .unwrap_or(1)
}

/// Angle 1: fuzzed serial-vs-batched differential runs.
#[test]
fn batched_replay_is_byte_identical_to_serial() {
    check("batched == serial across fuzzed experiments", 14, |g| {
        let exp = random_experiment(g);
        let mix = random_mix(g);
        let batch = match g.usize_in(0..3) {
            0 => 7,
            1 => 256,
            _ => max_trace_len(&mix) + 1,
        };
        let serial = fingerprint(&run_mix_with_batch(&mix, &exp, 1));
        let batched = fingerprint(&run_mix_with_batch(&mix, &exp, batch));
        ensure!(
            serial == batched,
            "batch={batch} diverged from serial for {:?} under {}",
            mix.workloads.iter().map(|w| w.name).collect::<Vec<_>>(),
            exp.fingerprint()
        );
        Ok(())
    });
}

/// Angle 2: one fixed full-stack config replayed across the whole edge
/// batch ladder, including the default entry point (`run_mix`, which
/// batches at `DEFAULT_BATCH`).
#[test]
fn batch_ladder_matches_serial_on_full_stack() {
    let mix = Mix {
        index: 0,
        workloads: vec![
            workloads::by_name("spec06.mcf").expect("registry workload"),
            workloads::by_name("gap.bfs").expect("registry workload"),
        ],
    };
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .l2(L2Kind::Ipcp)
        .temporal(TemporalKind::Streamline);
    let serial = fingerprint(&run_mix_with_batch(&mix, &exp, 1));
    for batch in [2, 7, 256, max_trace_len(&mix) + 1] {
        let batched = fingerprint(&run_mix_with_batch(&mix, &exp, batch));
        assert_eq!(serial, batched, "batch {batch} diverged from serial");
    }
    let default_path = fingerprint(&run_mix(&mix, &exp));
    assert_eq!(serial, default_path, "run_mix default batch diverged");
}

/// Angle 3a: cancellation still works under batching — a pre-cancelled
/// token aborts before any work, and an uncancelled token's run is
/// byte-identical to the plain one (the poll touches no simulated
/// state).
#[test]
fn cancellation_semantics_survive_batching() {
    let mix = Mix {
        index: 0,
        workloads: vec![workloads::by_name("gap.bfs").expect("registry workload")],
    };
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);

    let pre_cancelled = CancelToken::new();
    pre_cancelled.cancel();
    assert!(
        run_mix_with_batch_cancellable(&mix, &exp, 256, &pre_cancelled).is_none(),
        "a pre-cancelled token must abort the batched run"
    );

    let live = CancelToken::new();
    let via_token = run_mix_with_batch_cancellable(&mix, &exp, 256, &live)
        .expect("uncancelled run completes");
    let plain = run_mix_with_batch(&mix, &exp, 256);
    assert_eq!(
        fingerprint(&via_token),
        fingerprint(&plain),
        "an uncancelled token must not perturb the batched run"
    );
    assert!(live.polls() > 0, "the engine never polled the token");
}

/// Angle 3b: the poll cadence bound. Serial polls once per
/// `CANCEL_EPOCH` steps; batching may stretch each interval by at most
/// one block (`batch - 1` extra accesses) because polls happen at the
/// first block boundary at or after each epoch multiple. Both runs
/// process identical work (byte-identical reports), so the serial poll
/// count brackets the total step count and bounds what the batched
/// count may legally be.
#[test]
fn batched_polling_stays_at_epoch_granularity() {
    let mix = Mix {
        index: 0,
        workloads: vec![
            workloads::by_name("spec06.mcf").expect("registry workload"),
            workloads::by_name("spec06.libquantum").expect("registry workload"),
        ],
    };
    let exp = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    for batch in [7u64, 256, 1024] {
        let serial_token = CancelToken::new();
        let serial = run_mix_with_batch_cancellable(&mix, &exp, 1, &serial_token)
            .expect("uncancelled");
        let batched_token = CancelToken::new();
        let batched =
            run_mix_with_batch_cancellable(&mix, &exp, batch as usize, &batched_token)
                .expect("uncancelled");
        assert_eq!(fingerprint(&serial), fingerprint(&batched));

        let ps = serial_token.polls();
        let pb = batched_token.polls();
        // Serial polls at every CANCEL_EPOCH multiple, so total steps
        // S <= ps * CANCEL_EPOCH; the batched path's poll intervals are
        // each <= CANCEL_EPOCH + batch - 1 accesses, giving the floor.
        assert!(ps > 2, "run too short to exercise the bound: {ps} polls");
        let floor = (ps - 1) * CANCEL_EPOCH / (CANCEL_EPOCH + batch - 1);
        assert!(
            pb >= floor,
            "batch {batch}: {pb} polls < floor {floor} (serial {ps}) — \
             batching stretched the poll interval past one block"
        );
        // And batching never polls *more* often than the epoch cadence.
        assert!(
            pb <= ps + 1,
            "batch {batch}: {pb} polls > serial {ps} + 1"
        );
    }
}

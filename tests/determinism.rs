//! Determinism of the parallel sweep runner: for the same seeds, a
//! parallel sweep must produce reports identical to the serial path —
//! every counter, every derived statistic — and repeated parallel runs
//! must agree with each other.
//!
//! Reports are compared through their `Debug` rendering, which spells
//! out every field of every per-core, LLC, and DRAM statistic, so two
//! equal strings mean bit-identical results.

use streamline_repro::prelude::*;
use streamline_repro::tpharness::sweep::{SweepJob, SweepRunner};

/// The determinism matrix: three workloads (one per suite) crossed with
/// the baseline and all three temporal prefetchers.
fn matrix() -> Vec<SweepJob> {
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let mut jobs = Vec::new();
    for name in ["spec06.mcf", "spec17.xalancbmk", "gap.bfs"] {
        let w = workloads::by_name(name).expect("registry workload");
        for kind in [
            TemporalKind::None,
            TemporalKind::Triage,
            TemporalKind::Triangel,
            TemporalKind::Streamline,
        ] {
            jobs.push(SweepJob::single(w.clone(), base.clone().temporal(kind)));
        }
    }
    jobs
}

fn render(reports: &[SimReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn parallel_sweep_is_identical_to_serial() {
    let jobs = matrix();
    let serial = render(&SweepRunner::serial().run(&jobs));
    let parallel = render(&SweepRunner::new().with_workers(8).run(&jobs));
    assert_eq!(serial.len(), jobs.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "job {i} ({}) diverged under 8 workers", jobs[i].key());
    }
}

#[test]
fn repeated_parallel_sweeps_agree() {
    let jobs = matrix();
    // Two fresh runners: nothing is cached, every job re-simulates.
    let first = render(&SweepRunner::new().with_workers(8).run(&jobs));
    let second = render(&SweepRunner::new().with_workers(8).run(&jobs));
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(a, b, "job {i} ({}) varies across runs", jobs[i].key());
    }
}

#[test]
fn derived_seed_sweeps_are_deterministic_too() {
    let jobs = matrix();
    let serial = render(&SweepRunner::serial().with_base_seed(42).run(&jobs));
    let parallel = render(&SweepRunner::new().with_workers(8).with_base_seed(42).run(&jobs));
    assert_eq!(serial, parallel, "derived-seed sweep diverged");
}

#[test]
fn sweep_reports_match_direct_runs() {
    // The runner's canonical-seed path must agree with calling the
    // experiment runner directly, job by job.
    let jobs = matrix();
    let swept = render(&SweepRunner::new().with_workers(4).run(&jobs));
    for (job, got) in jobs.iter().zip(&swept) {
        if let SweepJob::Single { workload, exp } = job {
            let direct = format!("{:?}", run_single(workload, exp));
            assert_eq!(&direct, got, "{} differs from direct run", job.key());
        }
    }
}

#[test]
fn mix_jobs_are_deterministic_in_parallel() {
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let mixes = MixGenerator::new(0xDE7).mixes(2, 3);
    let jobs: Vec<SweepJob> = mixes
        .iter()
        .flat_map(|m| {
            [
                SweepJob::mix(m.clone(), base.clone()),
                SweepJob::mix(m.clone(), base.clone().temporal(TemporalKind::Streamline)),
            ]
        })
        .collect();
    let serial = render(&SweepRunner::serial().run(&jobs));
    let parallel = render(&SweepRunner::new().with_workers(8).run(&jobs));
    assert_eq!(serial, parallel, "mix sweep diverged under 8 workers");
}

//! End-to-end integration tests: whole-pipeline behaviour across crates.
//!
//! These run at `Scale::Test` to stay fast; the paper-shape assertions
//! are deliberately loose (direction and ordering, not magnitudes).

use streamline_repro::prelude::*;

fn ipc(r: &SimReport) -> f64 {
    r.cores[0].ipc()
}

#[test]
fn temporal_prefetchers_speed_up_pointer_chasing() {
    // A dependent chase whose footprint (4 MB) exceeds the 2 MB LLC:
    // the regime where giving up LLC ways for metadata pays. (At
    // `Scale::Test` the bundled mcf stand-in fits the LLC, where the
    // correct behaviour is to shrink the partition, not to win.)
    use streamline_repro::tptrace::TraceBuilder;
    let nodes = 64_000u64;
    let mut builder = TraceBuilder::new("chase", Suite::Spec06);
    for _ in 0..4 {
        for i in 0..nodes {
            builder.dep_load(0x900, (i.wrapping_mul(2654435761) % nodes) * 64 + (1 << 43));
        }
    }
    let trace = builder.finish();
    let run = |temporal: Option<TemporalKind>| {
        let mut plan = CorePlan::bare(trace.clone());
        if let Some(k) = temporal {
            plan = plan.with_temporal(k.build().expect("real prefetcher"));
        }
        Engine::new(SystemConfig::single_core(), vec![plan]).run()
    };
    let b = run(None);
    for kind in [TemporalKind::Triangel, TemporalKind::Streamline] {
        let r = run(Some(kind));
        assert!(
            ipc(&r) > ipc(&b) * 1.10,
            "{kind:?} should speed up an LLC-exceeding chase: {} vs {}",
            ipc(&r),
            ipc(&b)
        );
    }
}

#[test]
fn streamline_beats_triangel_on_coverage_for_irregular_pool() {
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let pool = ["spec06.mcf", "spec06.xalancbmk", "gap.pr"];
    let mut stl_cov = 0.0;
    let mut tri_cov = 0.0;
    for name in pool {
        let w = workloads::by_name(name).unwrap();
        let t = run_single(&w, &base.clone().temporal(TemporalKind::Triangel));
        let s = run_single(&w, &base.clone().temporal(TemporalKind::Streamline));
        tri_cov += t.cores[0].temporal_coverage();
        stl_cov += s.cores[0].temporal_coverage();
    }
    assert!(
        stl_cov > tri_cov,
        "streamline coverage {stl_cov:.3} should beat triangel {tri_cov:.3}"
    );
}

#[test]
fn streamline_capacity_exceeds_triangel_by_a_third() {
    use streamline_repro::streamline_core::Streamline;
    use streamline_repro::triangel::Triangel;
    let s = Streamline::new().capacity_correlations();
    let t = Triangel::new().capacity_correlations();
    assert_eq!(s, t / 3 * 4, "stream format holds 33% more: {s} vs {t}");
}

#[test]
fn stride_prefetcher_covers_streaming_workloads() {
    let w = workloads::by_name("spec06.libquantum").unwrap();
    let bare = Experiment::new(Scale::Test);
    let stride = bare.clone().l1(L1Kind::Stride);
    let b = run_single(&w, &bare);
    let s = run_single(&w, &stride);
    assert!(
        ipc(&s) > ipc(&b) * 1.2,
        "stride should crush streams: {} vs {}",
        ipc(&s),
        ipc(&b)
    );
}

#[test]
fn temporal_prefetchers_leave_streaming_workloads_mostly_alone() {
    let w = workloads::by_name("spec06.libquantum").unwrap();
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let b = run_single(&w, &base);
    for kind in [TemporalKind::Triangel, TemporalKind::Streamline] {
        let r = run_single(&w, &base.clone().temporal(kind));
        let ratio = ipc(&r) / ipc(&b);
        assert!(
            (0.85..1.15).contains(&ratio),
            "{kind:?} should be near-neutral on streams: {ratio}"
        );
    }
}

#[test]
fn metadata_traffic_ordering_matches_paper() {
    // Streamline's stream format must generate less metadata traffic
    // than Triangel per covered miss on a stable irregular workload.
    let w = workloads::by_name("spec06.xalancbmk").unwrap();
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let t = run_single(&w, &base.clone().temporal(TemporalKind::Triangel));
    let s = run_single(&w, &base.clone().temporal(TemporalKind::Streamline));
    let per_cov = |r: &SimReport| {
        let c = &r.cores[0];
        c.temporal.traffic_blocks() as f64 / c.l2_useful_by_origin[2].max(1) as f64
    };
    assert!(
        per_cov(&s) < per_cov(&t),
        "streamline traffic/covered {} should undercut triangel {}",
        per_cov(&s),
        per_cov(&t)
    );
}

#[test]
fn multicore_mix_runs_and_reports_all_cores() {
    // Two cores keep the debug-build runtime of this test reasonable;
    // the 4- and 8-core paths are exercised by the fig10/fig11 binaries.
    let mix = &MixGenerator::new(42).mixes(2, 1)[0];
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let b = run_mix(mix, &base);
    let s = run_mix(mix, &base.clone().temporal(TemporalKind::Streamline));
    assert_eq!(b.cores.len(), 2);
    assert_eq!(s.cores.len(), 2);
    assert!(b.cores.iter().all(|c| c.instructions > 0));
    let sp = mix_speedup(&b, &s);
    assert!(sp > 0.4 && sp < 4.0, "sane mix speedup: {sp}");
}

#[test]
fn experiments_are_deterministic() {
    let w = workloads::by_name("gap.bfs").unwrap();
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    let a = run_single(&w, &exp);
    let b = run_single(&w, &exp);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.cores[0].l2.misses, b.cores[0].l2.misses);
    assert_eq!(
        a.cores[0].temporal.trigger_hits,
        b.cores[0].temporal.trigger_hits
    );
}

#[test]
fn bandwidth_scaling_changes_outcomes_sanely() {
    let w = workloads::by_name("gap.pr").unwrap();
    let narrow = Experiment::new(Scale::Test).l1(L1Kind::Stride).bandwidth(0.25);
    let wide = Experiment::new(Scale::Test).l1(L1Kind::Stride).bandwidth(2.0);
    let n = run_single(&w, &narrow);
    let x = run_single(&w, &wide);
    assert!(ipc(&x) >= ipc(&n), "{} vs {}", ipc(&x), ipc(&n));
}

#[test]
fn ideal_temporal_is_an_upper_bound_on_streamline() {
    let w = workloads::by_name("spec06.xalancbmk").unwrap();
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let ideal = run_single(&w, &base.clone().temporal(TemporalKind::Ideal));
    let real = run_single(&w, &base.clone().temporal(TemporalKind::Streamline));
    assert!(
        ipc(&ideal) >= ipc(&real) * 0.95,
        "ideal {} should not lose to real {}",
        ipc(&ideal),
        ipc(&real)
    );
}

#[test]
fn l2_prefetchers_compose_with_streamline() {
    let w = workloads::by_name("spec06.soplex").unwrap();
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    for l2 in [L2Kind::Ipcp, L2Kind::Bingo, L2Kind::SppPpf] {
        let r = run_single(
            &w,
            &base.clone().l2(l2).temporal(TemporalKind::Streamline),
        );
        assert!(r.cores[0].ipc() > 0.0, "{l2:?} composition runs");
        assert!(r.cores[0].l2_prefetches + r.cores[0].temporal.prefetches_issued > 0);
    }
}

//! Fleet-equivalence suite for the tpserve coordinator: a fleet of
//! backend servers behind `--coordinator` must produce reports
//! byte-identical to local `--jobs=N` sweeps — including when a
//! backend dies mid-sweep, is down from the start, or the whole fleet
//! is unreachable and jobs fall back to local execution.

use std::thread;
use tpharness::baselines::{L1Kind, TemporalKind};
use tpharness::experiment::{run_single, Experiment};
use tpharness::sweep::{SweepJob, SweepRunner};
use tpharness::wire::{encode_sim_report, parse, Value};
use tpserve::protocol::Request;
use tpserve::{
    Client, Coordinator, CoordController, CoordinatorConfig, HashRing, Server, ServerConfig,
};
use tptrace::{workloads, Scale};

struct Backend {
    addr: String,
    handle: thread::JoinHandle<()>,
}

fn start_backend() -> Backend {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind backend");
    let addr = server.addr().to_string();
    let handle = thread::spawn(move || server.run().expect("backend run"));
    Backend { addr, handle }
}

struct Fleet {
    addr: String,
    controller: CoordController,
    handle: thread::JoinHandle<()>,
}

fn start_coordinator(backends: &[String]) -> Fleet {
    let coord = Coordinator::bind("127.0.0.1:0", backends, CoordinatorConfig::default())
        .expect("bind coordinator");
    let addr = coord.addr().to_string();
    let controller = coord.controller();
    let handle = thread::spawn(move || coord.run().expect("coordinator run"));
    Fleet {
        addr,
        controller,
        handle,
    }
}

fn shutdown_backend(b: Backend) {
    let mut c = Client::connect(&b.addr).expect("connect backend for shutdown");
    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    b.handle.join().unwrap();
}

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).unwrap_or("<none>")
}

fn req(json: &str) -> Value {
    parse(json).expect("test request parses")
}

/// An address that connect() refuses: bind an ephemeral port, record
/// it, and drop the listener before anyone dials it.
fn dead_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

fn seeded_payload(seed: u64) -> Value {
    req(&format!(
        r#"{{"workload":"spec06.mcf","scale":"test","l1":"stride","temporal":"streamline","seed":{seed}}}"#
    ))
}

/// The primary ring node a payload routes to — computed exactly as the
/// coordinator does (canonical request encoding → ring point), so
/// tests can deterministically aim jobs at a chosen backend.
fn primary_of(ring: &HashRing, payload: &Value) -> usize {
    let r = Request::from_value(payload).expect("payload is a valid request");
    ring.candidates(HashRing::job_point(&r.canonical()))[0]
}

/// The first seed in `1..` whose payload's primary is backend `target`.
fn seed_with_primary(ring: &HashRing, target: usize) -> u64 {
    (1..1000)
        .find(|&s| primary_of(ring, &seeded_payload(s)) == target)
        .expect("some seed in 1..1000 must hash to every backend")
}

fn stat_u64(stats: &Value, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats.{key} missing: {}", stats.encode()))
}

#[test]
fn fleet_of_three_matches_local_jobs_sweep() {
    let backends: Vec<Backend> = (0..3).map(|_| start_backend()).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let fleet = start_coordinator(&addrs);
    let mut c = Client::connect(&fleet.addr).expect("connect coordinator");
    assert_eq!(status(&c.ping().unwrap()), "ok");

    // A multi-experiment sweep: 3 workloads x {streamline, triage}.
    let names = ["spec06.mcf", "gap.bfs", "spec06.omnetpp"];
    let kinds = [
        ("streamline", TemporalKind::Streamline),
        ("triage", TemporalKind::Triage),
    ];
    let mut payloads = Vec::new();
    let mut jobs = Vec::new();
    for name in names {
        for (wire_name, kind) in kinds {
            payloads.push(req(&format!(
                r#"{{"workload":"{name}","scale":"test","l1":"stride","temporal":"{wire_name}"}}"#
            )));
            jobs.push(SweepJob::single(
                workloads::by_name(name).unwrap(),
                Experiment::new(Scale::Test).l1(L1Kind::Stride).temporal(kind),
            ));
        }
    }

    // Pipeline every SUBMIT, then wait the tickets out in order —
    // the same submit-all-then-collect shape SweepRunner::map uses.
    let submitted = c.pipeline(&payloads).unwrap();
    let mut served = Vec::with_capacity(payloads.len());
    for resp in &submitted {
        assert_eq!(status(resp), "queued", "{}", resp.encode());
        let ticket = resp.get("ticket").and_then(Value::as_u64).unwrap();
        let done = c.wait(ticket).unwrap();
        assert_eq!(status(&done), "done", "{}", done.encode());
        served.push(done.get("report").expect("done carries a report").encode());
    }

    // Byte-identity against a local --jobs=2 sweep over the same jobs,
    // in the same canonical order.
    let local = SweepRunner::new().with_workers(2).run(&jobs);
    for (i, (remote, report)) in served.iter().zip(&local).enumerate() {
        assert_eq!(
            remote,
            &encode_sim_report(report),
            "job {i}: fleet report must be byte-identical to the local sweep"
        );
    }

    // Seed-overriding request: must bypass the seed-blind sweep cache
    // on whichever backend it lands on and match a direct reseeded run.
    let seeded = seeded_payload(12345);
    let resp = c.submit_and_wait(&seeded).unwrap();
    assert_eq!(status(&resp), "done");
    let w = workloads::by_name("spec06.mcf").unwrap().with_seed(12345);
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    assert_eq!(
        resp.get("report").unwrap().encode(),
        encode_sim_report(&run_single(&w, &exp)),
        "seeded fleet report must match a direct reseeded run"
    );

    // A healthy fleet forwards everything to primaries: no reroutes,
    // no local fallbacks, and the routed counts add up.
    let stats = c.stats().unwrap();
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("role"))
            .and_then(Value::as_str),
        Some("coordinator")
    );
    assert_eq!(stat_u64(&stats, "forwarded"), payloads.len() as u64 + 1);
    assert_eq!(stat_u64(&stats, "rerouted"), 0);
    assert_eq!(stat_u64(&stats, "local_jobs"), 0);
    let per_backend = stats
        .get("stats")
        .and_then(|s| s.get("backends"))
        .and_then(Value::as_arr)
        .expect("coordinator stats carry a backends array");
    assert_eq!(per_backend.len(), 3);
    let routed: u64 = per_backend
        .iter()
        .map(|b| b.get("routed").and_then(Value::as_u64).unwrap())
        .sum();
    assert_eq!(routed, payloads.len() as u64 + 1);

    // Identical resubmission is a coordinator-cache hit: answered
    // synchronously, byte-identical, no new forward.
    let resp = c.submit_and_wait(&payloads[0]).unwrap();
    assert_eq!(status(&resp), "done");
    assert_eq!(resp.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(resp.get("report").unwrap().encode(), served[0]);
    assert_eq!(stat_u64(&c.stats().unwrap(), "forwarded"), payloads.len() as u64 + 1);

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    fleet.handle.join().unwrap();
    assert_eq!(fleet.controller.rerouted(), 0);
    for b in backends {
        shutdown_backend(b);
    }
}

#[test]
fn backend_killed_mid_sweep_reroutes_with_byte_identical_reports() {
    // Two real backends plus a fake that accepts the coordinator's
    // link, acknowledges the first SUBMIT as queued, and then drops
    // the connection and stops listening — a mid-sweep kill.
    let b0 = start_backend();
    let b1 = start_backend();
    let fake = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = fake.local_addr().unwrap().to_string();
    let killer = thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        let (stream, _) = fake.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("SUBMIT"), "unexpected first line: {line}");
        let mut stream = stream;
        stream
            .write_all(b"{\"status\":\"queued\",\"ticket\":1,\"key\":\"0\",\"queue_depth\":1}\n")
            .unwrap();
        // Dropping the stream and listener kills the backend: the
        // coordinator sees EOF on the link and connect-refused after.
    });

    let addrs = vec![b0.addr.clone(), fake_addr, b1.addr.clone()];
    let ring = HashRing::new(&addrs);
    // Deterministically aim two jobs at the doomed backend (index 1)
    // and two at the survivors.
    let s_dead = seed_with_primary(&ring, 1);
    let s_dead2 = (s_dead + 1..1000)
        .find(|&s| primary_of(&ring, &seeded_payload(s)) == 1)
        .unwrap();
    let s_live = seed_with_primary(&ring, 0);
    let s_live2 = seed_with_primary(&ring, 2);
    let seeds = [s_dead, s_dead2, s_live, s_live2];

    let fleet = start_coordinator(&addrs);
    let mut c = Client::connect(&fleet.addr).expect("connect coordinator");
    let payloads: Vec<Value> = seeds.iter().map(|&s| seeded_payload(s)).collect();
    let submitted = c.pipeline(&payloads).unwrap();

    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    for (resp, &seed) in submitted.iter().zip(&seeds) {
        assert_eq!(status(resp), "queued", "{}", resp.encode());
        let ticket = resp.get("ticket").and_then(Value::as_u64).unwrap();
        let done = c.wait(ticket).unwrap();
        assert_eq!(status(&done), "done", "{}", done.encode());
        let w = workloads::by_name("spec06.mcf").unwrap().with_seed(seed);
        assert_eq!(
            done.get("report").unwrap().encode(),
            encode_sim_report(&run_single(&w, &exp)),
            "seed {seed}: report must stay byte-identical across the kill"
        );
    }

    // The jobs aimed at the killed backend must have rerouted.
    assert!(
        fleet.controller.rerouted() >= 2,
        "expected both doomed-backend jobs to reroute, got {}",
        fleet.controller.rerouted()
    );
    let stats = c.stats().unwrap();
    assert!(stat_u64(&stats, "rerouted") >= 2);
    let per_backend = stats
        .get("stats")
        .and_then(|s| s.get("backends"))
        .and_then(Value::as_arr)
        .unwrap();
    let dead = per_backend
        .iter()
        .find(|b| b.get("addr").and_then(Value::as_str) == Some(addrs[1].as_str()))
        .expect("killed backend still listed in stats");
    assert_eq!(dead.get("up").and_then(Value::as_bool), Some(false));
    assert!(dead.get("rerouted_away").and_then(Value::as_u64).unwrap() >= 2);

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    fleet.handle.join().unwrap();
    killer.join().unwrap();
    shutdown_backend(b0);
    shutdown_backend(b1);
}

#[test]
fn backend_down_at_start_falls_back_and_counts_reroutes() {
    // The middle ring node never existed; jobs aimed at it must land
    // on a live backend with the departure visible in STATS.
    let b0 = start_backend();
    let b1 = start_backend();
    let addrs = vec![b0.addr.clone(), dead_addr(), b1.addr.clone()];
    let ring = HashRing::new(&addrs);
    let seed = seed_with_primary(&ring, 1);

    let fleet = start_coordinator(&addrs);
    let mut c = Client::connect(&fleet.addr).expect("connect coordinator");
    let resp = c.submit_and_wait(&seeded_payload(seed)).unwrap();
    assert_eq!(status(&resp), "done", "{}", resp.encode());
    let w = workloads::by_name("spec06.mcf").unwrap().with_seed(seed);
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    assert_eq!(
        resp.get("report").unwrap().encode(),
        encode_sim_report(&run_single(&w, &exp)),
        "rerouted report must be byte-identical to a local run"
    );

    assert!(fleet.controller.rerouted() >= 1);
    assert_eq!(fleet.controller.local_jobs(), 0, "a live ring node must absorb the job");
    let stats = c.stats().unwrap();
    assert!(
        stat_u64(&stats, "rerouted") >= 1,
        "the rerouted counter must be visible in STATS: {}",
        stats.encode()
    );
    let per_backend = stats
        .get("stats")
        .and_then(|s| s.get("backends"))
        .and_then(Value::as_arr)
        .unwrap();
    let down = per_backend
        .iter()
        .find(|b| b.get("addr").and_then(Value::as_str) == Some(addrs[1].as_str()))
        .unwrap();
    assert_eq!(down.get("up").and_then(Value::as_bool), Some(false));
    assert!(down.get("rerouted_away").and_then(Value::as_u64).unwrap() >= 1);

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    fleet.handle.join().unwrap();
    shutdown_backend(b0);
    shutdown_backend(b1);
}

#[test]
fn unreachable_fleet_falls_back_to_local_execution() {
    // Every ring node refuses connections: the coordinator must finish
    // the sweep itself, byte-identically, and say so in its counters —
    // including the seed-bypass path running locally.
    let addrs = vec![dead_addr(), dead_addr()];
    let fleet = start_coordinator(&addrs);
    let mut c = Client::connect(&fleet.addr).expect("connect coordinator");

    let canonical = req(
        r#"{"workload":"gap.bfs","scale":"test","l1":"stride","temporal":"streamline"}"#,
    );
    let resp = c.submit_and_wait(&canonical).unwrap();
    assert_eq!(status(&resp), "done", "{}", resp.encode());
    let direct = SweepRunner::serial().run_one(SweepJob::single(
        workloads::by_name("gap.bfs").unwrap(),
        Experiment::new(Scale::Test)
            .l1(L1Kind::Stride)
            .temporal(TemporalKind::Streamline),
    ));
    assert_eq!(resp.get("report").unwrap().encode(), encode_sim_report(&direct));

    let seeded = seeded_payload(777);
    let resp = c.submit_and_wait(&seeded).unwrap();
    assert_eq!(status(&resp), "done");
    let w = workloads::by_name("spec06.mcf").unwrap().with_seed(777);
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    assert_eq!(
        resp.get("report").unwrap().encode(),
        encode_sim_report(&run_single(&w, &exp)),
        "local-fallback seeded run must bypass the seed-blind cache"
    );

    assert_eq!(fleet.controller.local_jobs(), 2);
    assert!(fleet.controller.rerouted() >= 2, "departures from unreachable primaries count");
    let stats = c.stats().unwrap();
    assert_eq!(stat_u64(&stats, "local_jobs"), 2);
    assert_eq!(stat_u64(&stats, "forwarded"), 0);
    let per_backend = stats
        .get("stats")
        .and_then(|s| s.get("backends"))
        .and_then(Value::as_arr)
        .unwrap();
    assert!(per_backend
        .iter()
        .all(|b| b.get("up").and_then(Value::as_bool) == Some(false)));

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    fleet.handle.join().unwrap();
}

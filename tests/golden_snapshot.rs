//! Golden-snapshot regression test: summary statistics for one small
//! `Scale::Test` workload per suite, under the stride baseline and with
//! Streamline on top, pinned at fixed precision.
//!
//! The simulator is a pure function of (trace, config) and the traces
//! are seed-deterministic, so these numbers must reproduce exactly on
//! any machine and any worker count. If a change to the simulator,
//! prefetchers, trace generators, or RNG moves them, that change is not
//! a refactor — either it fixed a bug (update the snapshot and say why
//! in the commit) or it introduced one.

use streamline_repro::prelude::*;
use streamline_repro::tpharness::sweep::{SweepJob, SweepRunner};

/// (workload, baseline IPC, streamline IPC, streamline L2 MPKI,
/// temporal coverage %, temporal accuracy %), all at 4 decimals.
const GOLDEN: &[(&str, &str, &str, &str, &str, &str)] = &[
    ("spec06.mcf", "0.1314", "0.0980", "21.6968", "87.3761", "97.8795"),
    ("spec17.xalancbmk", "0.1236", "0.1250", "14.8787", "91.0728", "99.9978"),
    ("gap.bfs", "0.2250", "0.1457", "57.7071", "63.6836", "80.5800"),
];

fn snapshot(runner: &SweepRunner) -> Vec<(&'static str, String, String, String, String, String)> {
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let with = base.clone().temporal(TemporalKind::Streamline);
    let jobs: Vec<SweepJob> = GOLDEN
        .iter()
        .flat_map(|&(name, ..)| {
            let w = workloads::by_name(name).expect("registry workload");
            [
                SweepJob::single(w.clone(), base.clone()),
                SweepJob::single(w, with.clone()),
            ]
        })
        .collect();
    let reports = runner.run(&jobs);
    GOLDEN
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&(name, ..), pair)| {
            let (b, s) = (&pair[0].cores[0], &pair[1].cores[0]);
            (
                name,
                format!("{:.4}", b.ipc()),
                format!("{:.4}", s.ipc()),
                format!("{:.4}", s.l2_mpki()),
                format!("{:.4}", s.temporal_coverage() * 100.0),
                format!("{:.4}", s.temporal_accuracy() * 100.0),
            )
        })
        .collect()
}

#[test]
fn summary_stats_match_golden_snapshot() {
    for (got, want) in snapshot(&SweepRunner::serial()).iter().zip(GOLDEN) {
        assert_eq!(got.0, want.0);
        assert_eq!(got.1, want.1, "{}: baseline IPC moved", want.0);
        assert_eq!(got.2, want.2, "{}: streamline IPC moved", want.0);
        assert_eq!(got.3, want.3, "{}: streamline L2 MPKI moved", want.0);
        assert_eq!(got.4, want.4, "{}: temporal coverage moved", want.0);
        assert_eq!(got.5, want.5, "{}: temporal accuracy moved", want.0);
    }
}

#[test]
fn golden_snapshot_is_worker_count_independent() {
    assert_eq!(
        snapshot(&SweepRunner::serial()),
        snapshot(&SweepRunner::new().with_workers(8)),
        "parallel snapshot diverged from serial"
    );
}

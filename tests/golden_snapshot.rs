//! Golden-snapshot regression test: summary statistics for one small
//! `Scale::Test` workload per suite, under the stride baseline and with
//! Streamline on top, pinned at fixed precision.
//!
//! The simulator is a pure function of (trace, config) and the traces
//! are seed-deterministic, so these numbers must reproduce exactly on
//! any machine and any worker count. If a change to the simulator,
//! prefetchers, trace generators, or RNG moves them, that change is not
//! a refactor — either it fixed a bug (update the snapshot and say why
//! in the commit) or it introduced one.

use streamline_repro::prelude::*;
use streamline_repro::tpharness::sweep::{SweepJob, SweepRunner};
use streamline_repro::tptrace::{Mix, TraceBuilder};
use std::fmt::Write as _;

/// (workload, baseline IPC, streamline IPC, streamline L2 MPKI,
/// temporal coverage %, temporal accuracy %), all at 4 decimals.
const GOLDEN: &[(&str, &str, &str, &str, &str, &str)] = &[
    ("spec06.mcf", "0.1314", "0.0980", "21.6968", "87.3761", "97.8795"),
    ("spec17.xalancbmk", "0.1236", "0.1250", "14.8787", "91.0728", "99.9978"),
    ("gap.bfs", "0.2250", "0.1457", "57.7071", "63.6836", "80.5800"),
];

fn snapshot(runner: &SweepRunner) -> Vec<(&'static str, String, String, String, String, String)> {
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let with = base.clone().temporal(TemporalKind::Streamline);
    let jobs: Vec<SweepJob> = GOLDEN
        .iter()
        .flat_map(|&(name, ..)| {
            let w = workloads::by_name(name).expect("registry workload");
            [
                SweepJob::single(w.clone(), base.clone()),
                SweepJob::single(w, with.clone()),
            ]
        })
        .collect();
    let reports = runner.run(&jobs);
    GOLDEN
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&(name, ..), pair)| {
            let (b, s) = (&pair[0].cores[0], &pair[1].cores[0]);
            (
                name,
                format!("{:.4}", b.ipc()),
                format!("{:.4}", s.ipc()),
                format!("{:.4}", s.l2_mpki()),
                format!("{:.4}", s.temporal_coverage() * 100.0),
                format!("{:.4}", s.temporal_accuracy() * 100.0),
            )
        })
        .collect()
}

#[test]
fn summary_stats_match_golden_snapshot() {
    for (got, want) in snapshot(&SweepRunner::serial()).iter().zip(GOLDEN) {
        assert_eq!(got.0, want.0);
        assert_eq!(got.1, want.1, "{}: baseline IPC moved", want.0);
        assert_eq!(got.2, want.2, "{}: streamline IPC moved", want.0);
        assert_eq!(got.3, want.3, "{}: streamline L2 MPKI moved", want.0);
        assert_eq!(got.4, want.4, "{}: temporal coverage moved", want.0);
        assert_eq!(got.5, want.5, "{}: temporal accuracy moved", want.0);
    }
}

/// Serialises **every** counter in a [`SimReport`] — per-core cache
/// stats, temporal stats, origin arrays, LLC, and DRAM — one
/// `key=value` per line. Unlike the headline snapshot above (4-decimal
/// rates), this is the raw integer state of the whole run: any
/// behavioural change to the simulator moves at least one line.
fn full_dump(r: &SimReport) -> String {
    let mut out = String::new();
    let cache = |out: &mut String, tag: &str, c: &streamline_repro::tpsim::CacheStats| {
        let _ = writeln!(
            out,
            "{tag}: acc={} hit={} miss={} useful_pf={} late_pf={} pf_fills={} useless_pf_ev={} wb={}",
            c.accesses,
            c.hits,
            c.misses,
            c.useful_prefetches,
            c.late_prefetches,
            c.prefetch_fills,
            c.useless_prefetch_evictions,
            c.writebacks
        );
    };
    for (i, c) in r.cores.iter().enumerate() {
        let _ = writeln!(
            out,
            "core{i}[{}]: instr={} cycles={}",
            c.workload, c.instructions, c.cycles
        );
        cache(&mut out, &format!("core{i}.l1d"), &c.l1d);
        cache(&mut out, &format!("core{i}.l2"), &c.l2);
        let t = &c.temporal;
        let _ = writeln!(
            out,
            "core{i}.temporal: mr={} mw={} rearr={} lk={} th={} ch={} ins={} red={} al={} fil={} real={} rsz={} pfi={}",
            t.meta_reads,
            t.meta_writes,
            t.rearranged_blocks,
            t.trigger_lookups,
            t.trigger_hits,
            t.correlation_hits,
            t.inserts,
            t.redundant_inserts,
            t.aligned_inserts,
            t.filtered,
            t.realigned,
            t.resizes,
            t.prefetches_issued
        );
        let _ = writeln!(
            out,
            "core{i}.pf: l1={} l2={} tpi={} tpd={} fills={:?} useful={:?} useless={:?}",
            c.l1_prefetches,
            c.l2_prefetches,
            c.temporal_pf_issued,
            c.temporal_pf_dropped,
            c.l2_fills_by_origin,
            c.l2_useful_by_origin,
            c.l2_useless_by_origin
        );
    }
    cache(&mut out, "llc", &r.llc);
    let _ = writeln!(
        out,
        "dram: rd={} wr={} rowhit={}",
        r.dram.reads, r.dram.writes, r.dram.row_hits
    );
    out
}

/// Full counter state of a 2-core mix (irregular + store-pressure
/// workloads) under stride + Streamline. Exercises the multi-core
/// hierarchy paths: per-core inflight/origin tracking, shared-LLC
/// contention, partitioning in the multi-core set domain.
const GOLDEN_MULTICORE: &str = include_str!("golden/multicore.txt");

/// Full counter state of a store-heavy synthetic run (stores over 2x
/// the LLC with Streamline attached): pins the writeback cascade,
/// eviction handling, and dirty-victim bookkeeping end to end.
const GOLDEN_STORE_HEAVY: &str = include_str!("golden/store_heavy.txt");

/// Full counter state of a 2-core mix where **both cores run the same
/// workload** (gap.bfs twice). With the shared trace pool the two cores
/// replay one `Arc<Trace>` allocation; this pin proves that sharing the
/// trace bytes changes nothing — per-core address tags still disjoint
/// the address spaces, and every counter matches the
/// private-copy-per-core numbers byte for byte.
const GOLDEN_SHARED_WORKLOAD: &str = include_str!("golden/multicore_shared.txt");

/// Full counter state of a 2-core mix pairing a store-heavy synthetic
/// trace with the irregular spec06.mcf registry workload, with the
/// *entire* prefetcher stack attached per core: L1 IP-stride (exercises
/// the L1 prefetch feedback path), L2 IPCP, and Streamline with its LLC
/// metadata partition. Pinned immediately **before** the batched-replay
/// engine refactor: every hoisted branch (warmup boundary, interleave
/// selection, feedback drains, accuracy epochs) feeds at least one
/// counter in this dump, so any batching bug that perturbs per-access
/// ordering moves at least one line here.
const GOLDEN_MIXED_STORE_FEEDBACK: &str = include_str!("golden/mixed_store_feedback.txt");

fn multicore_report() -> SimReport {
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    let mix = Mix {
        index: 0,
        workloads: vec![
            workloads::by_name("gap.pr").expect("registry workload"),
            workloads::by_name("spec06.mcf").expect("registry workload"),
        ],
    };
    run_mix(&mix, &exp)
}

fn shared_workload_report() -> SimReport {
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    let w = workloads::by_name("gap.bfs").expect("registry workload");
    let mix = Mix {
        index: 0,
        workloads: vec![w.clone(), w],
    };
    run_mix(&mix, &exp)
}

fn store_heavy_report() -> SimReport {
    let mut b = TraceBuilder::new("synthetic.store-golden", Suite::Spec06);
    // Stores over 2x the LLC with a 1-in-3 load mix: every level
    // overflows, dirty victims cascade to DRAM, and the temporal
    // prefetcher trains on the load misses.
    for i in 0..65_536u64 {
        b.store(0x400_100, 0x10_0000 + i * streamline_repro::tpsim::LINE_SIZE);
        if i % 3 == 0 {
            b.load(0x400_108, 0x10_0000 + (i / 5) * streamline_repro::tpsim::LINE_SIZE);
        }
    }
    let plan = CorePlan::bare(b.finish()).with_temporal(Box::new(Streamline::new()));
    Engine::new(SystemConfig::single_core(), vec![plan])
        .warmup_fraction(0.0)
        .run()
}

fn mixed_store_feedback_report() -> SimReport {
    use streamline_repro::tpprefetch::{IpStride, Ipcp};
    // Core 0: stores sweeping 2x the LLC with a strided load stream
    // (the stride prefetcher issues, so prefetch-feedback events flow)
    // plus a recurring pointer-chase loop that trains Streamline.
    let mut b = TraceBuilder::new("synthetic.store-feedback-golden", Suite::Spec06);
    for i in 0..48_000u64 {
        b.store(0x500_100, 0x20_0000 + i * streamline_repro::tpsim::LINE_SIZE);
        if i % 2 == 0 {
            b.load(0x500_108, 0x80_0000 + (i / 2) * streamline_repro::tpsim::LINE_SIZE);
        }
        if i % 4 == 0 {
            // 64-line temporal loop: revisited every 256 accesses.
            b.load(0x500_110, 0xC0_0000 + (i / 4 % 64) * 7 * streamline_repro::tpsim::LINE_SIZE);
        }
    }
    let stack = |trace: std::sync::Arc<Trace>| {
        CorePlan::bare(trace)
            .with_l1(Box::new(IpStride::default()))
            .with_l2(Box::new(Ipcp::default()))
            .with_temporal(Box::new(Streamline::new()))
    };
    let mcf = workloads::by_name("spec06.mcf")
        .expect("registry workload")
        .generate_shared(Scale::Test);
    let plans = vec![stack(std::sync::Arc::new(b.finish())), stack(mcf)];
    Engine::new(SystemConfig::with_cores(2), plans).run()
}

/// Compares `got` against the pinned dump in `tests/golden/<file>`, or
/// regenerates the pin when `TPSIM_REGEN_GOLDEN=1` (for intentional,
/// explained behaviour changes only — see the module docs).
fn assert_or_regen(got: &str, want: &str, file: &str) {
    if std::env::var_os("TPSIM_REGEN_GOLDEN").is_some_and(|v| v == "1") {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(file);
        std::fs::write(&path, got).expect("write regenerated golden dump");
        eprintln!("regenerated {}", path.display());
        return;
    }
    assert_eq!(got, want, "full counter dump moved ({file}):\n{got}");
}

#[test]
fn multicore_full_counters_match_golden_snapshot() {
    assert_or_regen(
        &full_dump(&multicore_report()),
        GOLDEN_MULTICORE,
        "multicore.txt",
    );
}

#[test]
fn shared_workload_mix_full_counters_match_golden_snapshot() {
    assert_or_regen(
        &full_dump(&shared_workload_report()),
        GOLDEN_SHARED_WORKLOAD,
        "multicore_shared.txt",
    );
}

#[test]
fn mixed_store_feedback_full_counters_match_golden_snapshot() {
    assert_or_regen(
        &full_dump(&mixed_store_feedback_report()),
        GOLDEN_MIXED_STORE_FEEDBACK,
        "mixed_store_feedback.txt",
    );
}

#[test]
fn store_heavy_full_counters_match_golden_snapshot() {
    assert_or_regen(
        &full_dump(&store_heavy_report()),
        GOLDEN_STORE_HEAVY,
        "store_heavy.txt",
    );
}

#[test]
fn golden_snapshot_is_worker_count_independent() {
    assert_eq!(
        snapshot(&SweepRunner::serial()),
        snapshot(&SweepRunner::new().with_workers(8)),
        "parallel snapshot diverged from serial"
    );
}

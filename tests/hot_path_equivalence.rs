//! Equivalence suite for the allocation-free hot path (tpcheck).
//!
//! The demand-access path replaced `std::collections::HashMap` sidecars
//! with fixed-capacity open-addressed [`LineMap`]s, converted the
//! feedback/sample drains to swap-based scratch buffers, and rewrote
//! the metadata-store victim scan in place. None of that may change a
//! single simulated number. Three angles pin it:
//!
//! 1. **Model equivalence on real address streams** — a [`LineMap`]
//!    driven by the inflight-table lifecycle (insert on fill, remove on
//!    demand touch or eviction) over actual workload trace lines agrees
//!    with a `HashMap` reference model at every step. (The adversarial
//!    random-key version of this property lives with the table itself,
//!    `crates/sim/src/table.rs`.)
//! 2. **End-to-end audit** — random (workload, config) pairs with the
//!    full prefetcher stack enabled (so the origin/inflight sidecars
//!    and the partition reservation path all run) pass every
//!    conservation law.
//! 3. **Determinism** — the same random experiment run twice produces
//!    byte-identical reports; open addressing introduced no iteration-
//!    order or probe-order dependence into any counter.

use std::collections::HashMap;
use streamline_repro::prelude::*;
use streamline_repro::tpsim::LineMap;
use streamline_repro::tptrace::Mix;
use tpcheck::{check, ensure, Gen};

const L1_KINDS: [L1Kind; 3] = [L1Kind::None, L1Kind::Stride, L1Kind::Berti];
const L2_KINDS: [L2Kind; 4] = [L2Kind::None, L2Kind::Ipcp, L2Kind::Bingo, L2Kind::SppPpf];

/// A random experiment at test scale. Unlike the audit suite's
/// generator, the temporal prefetcher is always on (any `None` config
/// would leave the sidecar tables and the partition path idle).
fn random_prefetching_experiment(g: &mut Gen) -> Experiment {
    let temporal = [
        TemporalKind::Ideal,
        TemporalKind::Triage,
        TemporalKind::Triangel,
        TemporalKind::Streamline,
    ][g.usize_in(0..4)];
    let mut exp = Experiment::new(Scale::Test)
        .l1(L1_KINDS[g.usize_in(0..L1_KINDS.len())])
        .l2(L2_KINDS[g.usize_in(0..L2_KINDS.len())])
        .temporal(temporal);
    exp.warmup = [0.0, 0.2, 0.5][g.usize_in(0..3)];
    exp
}

/// Everything in a report that a hot-path regression could move, as one
/// comparable string (Debug output covers every counter field).
fn report_fingerprint(r: &SimReport) -> String {
    format!("{:?} {:?} {:?}", r.cores, r.llc, r.dram)
}

/// Angle 1: the open-addressed table agrees with `HashMap` when driven
/// by the lifecycle the hierarchy actually subjects it to — keys are
/// real trace lines (clustered, strided, looping), inserts happen on
/// "fill", removals on "demand touch", and population stays bounded.
#[test]
fn linemap_matches_hashmap_on_real_address_streams() {
    let pool = workloads::memory_intensive();
    check("LineMap == HashMap on workload lines", 12, |g| {
        let w = &pool[g.usize_in(0..pool.len())];
        let trace = w.generate(Scale::Test);
        let mut map: LineMap<u64> = LineMap::with_capacity_for(g.usize_in(1..256));
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (i, a) in trace.iter().enumerate().take(60_000) {
            let line = a.addr.line();
            let t = i as u64;
            // Mimic the inflight lifecycle: first touch installs a
            // record, the next touch of the same line resolves it.
            if let std::collections::hash_map::Entry::Vacant(e) = reference.entry(line.0) {
                let got = map.insert(line, t);
                let want = { e.insert(t); None };
                ensure!(got == want, "{}: insert({line:?}) {got:?} != {want:?}", w.name);
            } else {
                let got = map.remove(line);
                let want = reference.remove(&line.0);
                ensure!(got == want, "{}: remove({line:?}) {got:?} != {want:?}", w.name);
            }
            ensure!(map.len() == reference.len(), "population diverged");
        }
        let mut got: Vec<(u64, u64)> = map.iter().map(|(l, &v)| (l.0, v)).collect();
        let mut want: Vec<(u64, u64)> = reference.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        ensure!(got == want, "{}: final contents diverged", w.name);
        Ok(())
    });
}

/// Angle 2: random (workload, config) pairs with prefetchers on pass
/// the full conservation-law audit — the sidecar tables never lose or
/// duplicate a record, or the fills/useful/useless balances would trip.
#[test]
fn prefetching_configs_pass_the_audit() {
    let pool = workloads::memory_intensive();
    check("audit passes with sidecar tables hot", 16, |g| {
        let w = &pool[g.usize_in(0..pool.len())];
        let exp = random_prefetching_experiment(g);
        let r = run_single(w, &exp);
        ensure!(
            r.audit.passed(),
            "audit failed for {} under {}:\n{}",
            w.name,
            exp.fingerprint(),
            r.audit
        );
        ensure!(r.audit.checks > 0, "audit ran no checks");
        Ok(())
    });
}

/// Angle 3: repeat runs are byte-identical — no probe-order, iteration-
/// order, or scratch-buffer state leaks into any reported number, even
/// across multi-core mixes where cores share the LLC and DRAM.
#[test]
fn repeat_runs_are_byte_identical() {
    let pool = workloads::memory_intensive();
    check("hot path is deterministic", 6, |g| {
        let exp = random_prefetching_experiment(g);
        let names: Vec<String> = (0..g.usize_in(1..3))
            .map(|_| pool[g.usize_in(0..pool.len())].name.to_string())
            .collect();
        let mix = Mix {
            index: 0,
            workloads: names
                .iter()
                .map(|n| workloads::by_name(n).expect("pool workload"))
                .collect(),
        };
        let a = report_fingerprint(&run_mix(&mix, &exp));
        let b = report_fingerprint(&run_mix(&mix, &exp));
        ensure!(a == b, "{names:?} under {} diverged", exp.fingerprint());
        Ok(())
    });
}

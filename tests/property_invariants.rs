//! Property-based tests on cross-crate invariants (tpcheck).

use streamline_repro::prelude::*;
use streamline_repro::streamline_core::{align, StoreInsert, StreamEntry, StreamStore};
use streamline_repro::tpreplace::{min_sim, tpmin_sim};
use streamline_repro::tptrace::record::Line;
use tpcheck::{check, ensure, Gen};
use tpserve::HashRing;

/// A random (trigger, target) metadata stream.
fn stream(g: &mut Gen, triggers: u64, targets: u64, len: std::ops::Range<usize>) -> Vec<(u64, u64)> {
    g.vec(len, |g| (g.u64_in(0..triggers), g.u64_in(0..targets)))
}

/// TP-MIN is offline-optimal for correlation hits: it never loses to
/// trigger-keyed MIN on that metric, for any stream and capacity.
#[test]
fn tpmin_never_loses_to_min_on_correlations() {
    check("tpmin >= min on correlation hits", 64, |g| {
        let s = stream(g, 24, 6, 1..300);
        let cap = g.usize_in(1..12);
        let tp = tpmin_sim(&s, cap);
        let mn = min_sim(&s, cap);
        ensure!(
            tp.correlation_hits >= mn.correlation_hits,
            "tpmin {} < min {} (cap {cap}, {} accesses)",
            tp.correlation_hits,
            mn.correlation_hits,
            s.len()
        );
        Ok(())
    });
}

/// MIN's trigger hits are an upper bound on TP-MIN's trigger hits
/// (MIN optimises triggers).
#[test]
fn min_maximises_trigger_hits() {
    check("min >= tpmin on trigger hits", 64, |g| {
        let s = stream(g, 16, 4, 1..200);
        let cap = g.usize_in(1..8);
        let tp = tpmin_sim(&s, cap);
        let mn = min_sim(&s, cap);
        ensure!(
            mn.trigger_hits >= tp.trigger_hits,
            "min {} < tpmin {}",
            mn.trigger_hits,
            tp.trigger_hits
        );
        Ok(())
    });
}

/// Stream alignment never loses a correlation of the new entry: the
/// aligned entry plus leftovers reproduce every new pair.
#[test]
fn alignment_preserves_new_correlations() {
    check("alignment preserves new correlations", 64, |g| {
        let old_targets = g.vec(4..5, |g| g.u64_in(1..50));
        let new_targets = g.vec(4..5, |g| g.u64_in(1..50));
        let pos = g.usize_in(0..4);
        let old = StreamEntry::new(
            Line(100),
            old_targets.iter().map(|&t| Line(100 + t)).collect::<Vec<_>>(),
        );
        let addrs: Vec<Line> = old.addresses().collect();
        let new = StreamEntry::new(
            addrs[pos],
            new_targets.iter().map(|&t| Line(200 + t)).collect::<Vec<_>>(),
        );
        if let Some(a) = align(&old, &new, 4) {
            let mut chain: Vec<Line> = a.aligned.addresses().collect();
            chain.extend(a.leftover.iter().copied());
            let merged: Vec<(Line, Line)> = chain.windows(2).map(|w| (w[0], w[1])).collect();
            for p in new.pairs() {
                ensure!(merged.contains(&p), "lost {p:?}");
            }
            ensure!(a.aligned.correlations() <= 4);
            ensure!(a.aligned.trigger == Line(100));
        }
        Ok(())
    });
}

/// The metadata store is a cache: lookups return exactly what was last
/// inserted for a trigger, or nothing — never someone else's entry.
#[test]
fn store_never_returns_wrong_entry() {
    check("store never returns a wrong entry", 64, |g| {
        let triggers = g.vec(1..200, |g| g.u64_in(0..500));
        let mut store = StreamStore::new(StreamlineConfig::default());
        let mut last: std::collections::HashMap<u64, Vec<Line>> = std::collections::HashMap::new();
        for (i, &t) in triggers.iter().enumerate() {
            let targets: Vec<Line> = (1..=4).map(|k| Line(t * 1000 + i as u64 + k)).collect();
            let e = StreamEntry::new(Line(t * 7919), targets.clone());
            if matches!(store.insert(e, (t % 251) as u8), StoreInsert::Stored { .. }) {
                last.insert(t, targets);
            }
        }
        for (&t, expected) in &last {
            if let Some(found) = store.lookup(Line(t * 7919), (t % 251) as u8) {
                ensure!(&found.targets == expected, "trigger {t}: {found:?}");
            }
        }
        Ok(())
    });
}

/// Filtered indexing is a pure function: whether a trigger filters
/// depends only on the trigger and the partition size, never on store
/// contents.
#[test]
fn filtering_is_content_independent() {
    check("filtering is content-independent", 64, |g| {
        let trigger = g.u64_in(0..1_000_000);
        let noise = g.vec(0..50, |g| g.u64_in(0..1_000_000));
        let cfg = StreamlineConfig {
            fixed_size: Some(PartitionSize::Half),
            ..Default::default()
        };
        let empty = StreamStore::new(cfg);
        let before = empty.would_filter(Line(trigger));
        let mut full = StreamStore::new(cfg);
        for n in noise {
            let e = StreamEntry::new(Line(n), vec![Line(n + 1)]);
            let _ = full.insert(e, 0);
        }
        ensure!(
            before == full.would_filter(Line(trigger)),
            "filtering decision for {trigger} changed with store contents"
        );
        Ok(())
    });
}

/// Trace generation is deterministic per (workload, scale).
#[test]
fn traces_are_deterministic() {
    check("traces are deterministic", 22, |g| {
        let pool = workloads::memory_intensive();
        let w = &pool[g.usize_in(0..pool.len())];
        let a = w.generate(Scale::Test);
        let b = w.generate(Scale::Test);
        ensure!(a.len() == b.len(), "{}: {} vs {}", w.name, a.len(), b.len());
        ensure!(
            a.accesses()[..50.min(a.len())] == b.accesses()[..50.min(b.len())],
            "{}: first accesses differ",
            w.name
        );
        Ok(())
    });
}

/// Random backend address lists for the coordinator's hash ring.
fn backend_addrs(g: &mut Gen, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| format!("10.{}.{}.{}:{}", g.u64_in(0..256), g.u64_in(0..256), g.u64_in(0..256), g.u64_in(1024..65536)))
        .collect()
}

/// Consistent hashing bounds churn: removing one backend only remaps
/// the jobs that were assigned to it — every other job keeps its
/// backend. Read in reverse, adding one backend only steals jobs for
/// the new node.
#[test]
fn ring_churn_is_bounded_to_the_changed_backend() {
    check("ring churn bounded on add/remove", 48, |g| {
        let n = g.usize_in(2..6);
        let addrs = backend_addrs(g, n);
        let removed = g.usize_in(0..n);
        let rest: Vec<String> = addrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != removed)
            .map(|(_, a)| a.clone())
            .collect();
        let full = HashRing::new(&addrs);
        let smaller = HashRing::new(&rest);
        for j in 0..256u64 {
            let point = HashRing::job_point(&format!("canonical-req-{j}-{}", g.u64_in(0..1 << 30)));
            let before = full.assign(point).expect("non-empty ring assigns");
            let after = smaller.assign(point).expect("non-empty ring assigns");
            if before != removed {
                ensure!(
                    addrs[before] == rest[after],
                    "job {j} moved from {} to {} though {} was the backend removed",
                    addrs[before],
                    rest[after],
                    addrs[removed]
                );
            }
        }
        Ok(())
    });
}

/// The ring is a pure function of the backend address list: a
/// restarted coordinator over the same `--backend=` flags reproduces
/// the identical assignment and failover order for every job.
#[test]
fn ring_assignment_is_stable_across_restarts() {
    check("ring assignment stable across restarts", 48, |g| {
        let n = g.usize_in(1..6);
        let addrs = backend_addrs(g, n);
        let a = HashRing::new(&addrs);
        let b = HashRing::new(&addrs);
        for j in 0..128u64 {
            let point = HashRing::job_point(&format!("canonical-req-{j}-{}", g.u64_in(0..1 << 30)));
            ensure!(
                a.assign(point) == b.assign(point),
                "restart changed the primary for point {point}"
            );
            ensure!(
                a.candidates(point) == b.candidates(point),
                "restart changed the failover order for point {point}"
            );
        }
        Ok(())
    });
}

/// Mix generation draws only from the given pool and is seed-stable.
#[test]
fn mixes_are_seeded_and_pool_bound() {
    let pool = workloads::memory_intensive();
    let names: std::collections::HashSet<&str> = pool.iter().map(|w| w.name).collect();
    for seed in 0..5u64 {
        let a = MixGenerator::new(seed).mixes(4, 6);
        let b = MixGenerator::new(seed).mixes(4, 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label(), y.label());
            for w in &x.workloads {
                assert!(names.contains(w.name));
            }
        }
    }
}

//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;
use streamline_repro::prelude::*;
use streamline_repro::tpreplace::{min_sim, tpmin_sim};
use streamline_repro::streamline_core::{align, StreamEntry, StreamStore};
use streamline_repro::tptrace::record::Line;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TP-MIN is offline-optimal for correlation hits: it never loses to
    /// trigger-keyed MIN on that metric, for any stream and capacity.
    #[test]
    fn tpmin_never_loses_to_min_on_correlations(
        stream in prop::collection::vec((0u64..24, 0u64..6), 1..300),
        cap in 1usize..12,
    ) {
        let tp = tpmin_sim(&stream, cap);
        let mn = min_sim(&stream, cap);
        prop_assert!(tp.correlation_hits >= mn.correlation_hits,
            "tpmin {} < min {}", tp.correlation_hits, mn.correlation_hits);
    }

    /// MIN's trigger hits are an upper bound on TP-MIN's trigger hits
    /// (MIN optimises triggers).
    #[test]
    fn min_maximises_trigger_hits(
        stream in prop::collection::vec((0u64..16, 0u64..4), 1..200),
        cap in 1usize..8,
    ) {
        let tp = tpmin_sim(&stream, cap);
        let mn = min_sim(&stream, cap);
        prop_assert!(mn.trigger_hits >= tp.trigger_hits);
    }

    /// Stream alignment never loses a correlation of the new entry: the
    /// aligned entry plus leftovers reproduce every new pair.
    #[test]
    fn alignment_preserves_new_correlations(
        old_targets in prop::collection::vec(1u64..50, 4),
        new_targets in prop::collection::vec(1u64..50, 4),
        pos in 0usize..4,
    ) {
        let old = StreamEntry::new(
            Line(100),
            old_targets.iter().map(|&t| Line(100 + t)).collect(),
        );
        let addrs: Vec<Line> = old.addresses().collect();
        let new = StreamEntry::new(
            addrs[pos],
            new_targets.iter().map(|&t| Line(200 + t)).collect(),
        );
        if let Some(a) = align(&old, &new, 4) {
            let mut chain: Vec<Line> = a.aligned.addresses().collect();
            chain.extend(a.leftover.iter().copied());
            let merged: Vec<(Line, Line)> =
                chain.windows(2).map(|w| (w[0], w[1])).collect();
            for p in new.pairs() {
                prop_assert!(merged.contains(&p), "lost {p:?}");
            }
            prop_assert!(a.aligned.correlations() <= 4);
            prop_assert_eq!(a.aligned.trigger, Line(100));
        }
    }

    /// The metadata store is a cache: lookups return exactly what was
    /// last inserted for a trigger, or nothing — never someone else's
    /// entry.
    #[test]
    fn store_never_returns_wrong_entry(
        triggers in prop::collection::vec(0u64..500, 1..200),
    ) {
        let mut store = StreamStore::new(StreamlineConfig::default());
        let mut last: std::collections::HashMap<u64, Vec<Line>> =
            std::collections::HashMap::new();
        for (i, &t) in triggers.iter().enumerate() {
            let targets: Vec<Line> =
                (1..=4).map(|k| Line(t * 1000 + i as u64 + k)).collect();
            let e = StreamEntry::new(Line(t * 7919), targets.clone());
            use streamline_repro::streamline_core::StoreInsert;
            if matches!(store.insert(e, (t % 251) as u8), StoreInsert::Stored { .. }) {
                last.insert(t, targets);
            }
        }
        for (&t, expected) in &last {
            if let Some(found) = store.lookup(Line(t * 7919), (t % 251) as u8) {
                prop_assert_eq!(&found.targets, expected, "trigger {}", t);
            }
        }
    }

    /// Filtered indexing is a pure function: whether a trigger filters
    /// depends only on the trigger and the partition size, never on
    /// store contents.
    #[test]
    fn filtering_is_content_independent(
        trigger in 0u64..1_000_000,
        noise in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let mut cfg = StreamlineConfig::default();
        cfg.fixed_size = Some(PartitionSize::Half);
        let empty = StreamStore::new(cfg);
        let before = empty.would_filter(Line(trigger));
        let mut full = StreamStore::new(cfg);
        for n in noise {
            let e = StreamEntry::new(Line(n), vec![Line(n + 1)]);
            let _ = full.insert(e, 0);
        }
        prop_assert_eq!(before, full.would_filter(Line(trigger)));
    }

    /// Trace generation is deterministic per (workload, scale).
    #[test]
    fn traces_are_deterministic(idx in 0usize..22) {
        let pool = workloads::memory_intensive();
        let w = &pool[idx % pool.len()];
        let a = w.generate(Scale::Test);
        let b = w.generate(Scale::Test);
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.accesses()[..50.min(a.len())].to_vec(),
                        b.accesses()[..50.min(b.len())].to_vec());
    }
}

/// Mix generation draws only from the given pool and is seed-stable.
#[test]
fn mixes_are_seeded_and_pool_bound() {
    let pool = workloads::memory_intensive();
    let names: std::collections::HashSet<&str> = pool.iter().map(|w| w.name).collect();
    for seed in 0..5u64 {
        let a = MixGenerator::new(seed).mixes(4, 6);
        let b = MixGenerator::new(seed).mixes(4, 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label(), y.label());
            for w in &x.workloads {
                assert!(names.contains(w.name));
            }
        }
    }
}

//! Integration tests pinning the offline analyzers against online
//! policies: the optimal bounds the practical.

use streamline_repro::tpreplace::{belady::Correlation, min_sim, tpmin_sim, Lru, SetPolicy, Srrip};

/// Simulates a tiny fully-associative trigger cache under an online
/// [`SetPolicy`], returning trigger hits.
fn online_trigger_hits(stream: &[Correlation], capacity: usize, policy: &mut dyn SetPolicy) -> u64 {
    let mut slots: Vec<Option<u64>> = vec![None; capacity];
    let mut hits = 0;
    for &(trigger, _) in stream {
        if let Some(w) = slots.iter().position(|s| *s == Some(trigger)) {
            hits += 1;
            policy.on_hit(w);
        } else {
            let valid: Vec<bool> = slots.iter().map(Option::is_some).collect();
            let v = policy.victim(&valid);
            slots[v] = Some(trigger);
            policy.on_fill(v);
        }
    }
    hits
}

fn lcg_stream(seed: u64, len: usize, triggers: u64, targets: u64) -> Vec<Correlation> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (x >> 33) % triggers;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (t, (x >> 33) % targets)
        })
        .collect()
}

#[test]
fn belady_min_bounds_online_policies_on_trigger_hits() {
    for seed in [1u64, 7, 42] {
        let stream = lcg_stream(seed, 2000, 40, 8);
        for cap in [4usize, 8, 16] {
            let optimal = min_sim(&stream, cap).trigger_hits;
            let lru = online_trigger_hits(&stream, cap, &mut Lru::new(cap));
            let srrip = online_trigger_hits(&stream, cap, &mut Srrip::new(cap));
            assert!(lru <= optimal, "lru {lru} > MIN {optimal} (cap {cap})");
            assert!(srrip <= optimal, "srrip {srrip} > MIN {optimal} (cap {cap})");
        }
    }
}

#[test]
fn tpmin_dominates_min_on_correlations_across_regimes() {
    for (triggers, targets) in [(10u64, 2u64), (50, 8), (100, 1)] {
        let stream = lcg_stream(99, 3000, triggers, targets);
        for cap in [4usize, 16, 64] {
            let tp = tpmin_sim(&stream, cap).correlation_hits;
            let mn = min_sim(&stream, cap).correlation_hits;
            assert!(
                tp >= mn,
                "TP-MIN {tp} < MIN {mn} at cap {cap} ({triggers}/{targets})"
            );
        }
    }
}

#[test]
fn stable_targets_close_the_min_tpmin_gap() {
    // With one target per trigger, trigger hits == correlation hits, so
    // the two formulations coincide.
    let stream: Vec<Correlation> = lcg_stream(5, 2000, 30, 1);
    for cap in [4usize, 8] {
        let tp = tpmin_sim(&stream, cap);
        let mn = min_sim(&stream, cap);
        assert_eq!(tp.correlation_hits, mn.correlation_hits);
        assert_eq!(mn.trigger_hits, mn.correlation_hits);
    }
}

#[test]
fn capacity_monotonicity_of_offline_hits() {
    let stream = lcg_stream(123, 2500, 60, 4);
    let mut prev_min = 0;
    let mut prev_tp = 0;
    for cap in [2usize, 4, 8, 16, 32] {
        let mn = min_sim(&stream, cap).trigger_hits;
        let tp = tpmin_sim(&stream, cap).correlation_hits;
        assert!(mn >= prev_min, "MIN not monotone in capacity");
        assert!(tp >= prev_tp, "TP-MIN not monotone in capacity");
        prev_min = mn;
        prev_tp = tp;
    }
}

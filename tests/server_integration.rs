//! End-to-end tests for the `tpserve` simulation service: protocol
//! round-trips over real sockets, byte-identical reports vs direct
//! sweep-runner execution, pipelined submissions, persistent-store
//! warm restarts, ticket-table bounds, load shedding, deadline
//! cancellation, and graceful drain.

use std::thread;
use tpharness::baselines::{L1Kind, TemporalKind};
use tpharness::experiment::{run_single, Experiment};
use tpharness::sweep::{SweepJob, SweepRunner};
use tpharness::wire::{encode_sim_report, parse, Value};
use tpserve::{Client, Controller, Server, ServerConfig};
use tptrace::{workloads, Scale};

struct Harness {
    addr: String,
    controller: Controller,
    handle: thread::JoinHandle<()>,
}

fn start(cfg: ServerConfig) -> Harness {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind test server");
    let addr = server.addr().to_string();
    let controller = server.controller();
    let handle = thread::spawn(move || server.run().expect("server run"));
    Harness {
        addr,
        controller,
        handle,
    }
}

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).unwrap_or("<none>")
}

fn req(json: &str) -> Value {
    parse(json).expect("test request parses")
}

#[test]
fn served_reports_are_byte_identical_and_cache_hits_skip_simulation() {
    let h = start(ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let mut c = Client::connect(&h.addr).expect("connect");
    assert_eq!(status(&c.ping().unwrap()), "ok");

    // Canonical-seed request vs a direct sweep-runner run.
    let payload = req(r#"{"workload":"spec06.mcf","scale":"test","l1":"stride","temporal":"streamline"}"#);
    let resp = c.submit_and_wait(&payload).unwrap();
    assert_eq!(status(&resp), "done", "{}", resp.encode());
    assert_eq!(resp.get("cached").unwrap().as_bool(), Some(false));
    let served = resp.get("report").expect("done carries a report").encode();

    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    let direct = SweepRunner::serial().run_one(SweepJob::single(
        workloads::by_name("spec06.mcf").unwrap(),
        exp.clone(),
    ));
    assert_eq!(
        served,
        encode_sim_report(&direct),
        "server report must be byte-identical to a direct run"
    );

    // Seed-overriding request vs a direct reseeded run (this path
    // bypasses the sweep cache inside the server).
    let seeded = req(r#"{"workload":"spec06.mcf","scale":"test","l1":"stride","temporal":"streamline","seed":12345}"#);
    let resp = c.submit_and_wait(&seeded).unwrap();
    assert_eq!(status(&resp), "done");
    let w = workloads::by_name("spec06.mcf").unwrap().with_seed(12345);
    assert_eq!(
        resp.get("report").unwrap().encode(),
        encode_sim_report(&run_single(&w, &exp)),
        "seeded server report must match a direct reseeded run"
    );

    // Identical resubmission: served synchronously from the response
    // cache, with no new simulation (proven via STATS counters).
    let sims_before = {
        let stats = c.stats().unwrap();
        stats.get("stats").unwrap().get("simulations").unwrap().as_u64().unwrap()
    };
    let resp = c.submit_and_wait(&payload).unwrap();
    assert_eq!(status(&resp), "done");
    assert_eq!(resp.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(resp.get("report").unwrap().encode(), served);
    let stats = c.stats().unwrap();
    let stats = stats.get("stats").unwrap();
    assert_eq!(
        stats.get("simulations").unwrap().as_u64().unwrap(),
        sims_before,
        "a cache hit must not simulate"
    );
    assert!(stats.get("cache_hits").unwrap().as_u64().unwrap() >= 1);
    // Service times are split by outcome so hits don't drown the
    // simulation latencies (and vice versa).
    let st = stats.get("service_time_us").unwrap();
    assert!(st.get("hit").unwrap().get("p50").is_some());
    assert!(st.get("simulated").unwrap().get("p50").is_some());

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    h.handle.join().unwrap();
}

#[test]
fn pipelined_submits_answer_in_request_order() {
    let h = start(ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let mut c = Client::connect(&h.addr).expect("connect");

    // Four SUBMITs (one a duplicate) written before any response is
    // read; the event loop must answer them in request order on this
    // connection even though workers finish out of order.
    let payloads: Vec<Value> = ["gap.bfs", "gap.tc", "gap.pr", "gap.bfs"]
        .iter()
        .map(|wl| req(&format!(r#"{{"workload":"{wl}","scale":"test"}}"#)))
        .collect();
    let keys: Vec<String> = payloads
        .iter()
        .map(|p| {
            format!(
                "{:016x}",
                tpserve::Request::from_value(p).expect("payload parses").key()
            )
        })
        .collect();
    let resps = c.pipeline(&payloads).expect("pipelined batch");
    assert_eq!(resps.len(), payloads.len());
    for (i, resp) in resps.iter().enumerate() {
        assert!(
            matches!(status(resp), "queued" | "done"),
            "response {i}: {}",
            resp.encode()
        );
        assert_eq!(
            resp.get("key").unwrap().as_str(),
            Some(keys[i].as_str()),
            "response {i} answers the wrong request (order violated)"
        );
    }
    // Every queued ticket still completes.
    for resp in &resps {
        if status(resp) == "queued" {
            let t = resp.get("ticket").unwrap().as_u64().unwrap();
            let done = c.wait(t).unwrap();
            assert_eq!(status(&done), "done", "{}", done.encode());
        }
    }

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    h.handle.join().unwrap();
}

#[test]
fn warm_restart_serves_cached_reports_from_the_store() {
    let dir = std::env::temp_dir().join(format!("tpserve-it-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let payload = req(r#"{"workload":"gap.bfs","scale":"test","temporal":"streamline"}"#);

    // First server: simulate once, persisting the result to the store.
    let report = {
        let h = start(ServerConfig {
            workers: 1,
            store_dir: Some(dir.clone()),
            ..Default::default()
        });
        let mut c = Client::connect(&h.addr).expect("connect");
        let resp = c.submit_and_wait(&payload).unwrap();
        assert_eq!(status(&resp), "done", "{}", resp.encode());
        let report = resp.get("report").unwrap().encode();
        assert_eq!(status(&c.shutdown().unwrap()), "ok");
        drop(c);
        h.handle.join().unwrap();
        report
    };

    // Second server over the same directory: the request is answered
    // synchronously from disk — byte-identical, zero simulations.
    let h = start(ServerConfig {
        workers: 1,
        store_dir: Some(dir.clone()),
        ..Default::default()
    });
    let mut c = Client::connect(&h.addr).expect("connect");
    let resp = c.submit_and_wait(&payload).unwrap();
    assert_eq!(status(&resp), "done", "{}", resp.encode());
    assert_eq!(resp.get("cached").unwrap().as_bool(), Some(true));
    assert!(
        resp.get("ticket").is_none(),
        "synchronous hits carry no ticket: {}",
        resp.encode()
    );
    assert_eq!(
        resp.get("report").unwrap().encode(),
        report,
        "restarted server must serve byte-identical bytes from the store"
    );
    let stats = c.stats().unwrap();
    let stats = stats.get("stats").unwrap();
    assert_eq!(
        stats.get("simulations").unwrap().as_u64(),
        Some(0),
        "warm restart must not simulate"
    );
    assert!(stats.get("store_hits").unwrap().as_u64().unwrap() >= 1);

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    h.handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ticket_table_stays_bounded_across_submit_poll_cycles() {
    let h = start(ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let mut c = Client::connect(&h.addr).expect("connect");

    // Distinct seeds force the queue path (each canonical is new);
    // repeat rounds are synchronous cache hits that create no tickets.
    // Historically every one of these leaked a ticket-table entry.
    for _round in 0..3 {
        for seed in 1..=8 {
            let resp = c
                .submit_and_wait(&req(&format!(
                    r#"{{"workload":"gap.bfs","scale":"test","seed":{seed}}}"#
                )))
                .unwrap();
            assert_eq!(status(&resp), "done", "{}", resp.encode());
        }
    }
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("stats").unwrap().get("tickets").unwrap().as_u64(),
        Some(0),
        "terminal tickets must be reaped after their delivering POLL"
    );

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    h.handle.join().unwrap();
}

#[test]
fn full_queue_sheds_load_with_structured_rejections() {
    let h = start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        start_paused: true, // queue fills deterministically: no worker pops
        ..Default::default()
    });
    let mut c = Client::connect(&h.addr).expect("connect");

    let a = c.submit(&req(r#"{"workload":"gap.bfs","scale":"test"}"#)).unwrap();
    let b = c.submit(&req(r#"{"workload":"gap.tc","scale":"test"}"#)).unwrap();
    let shed = c.submit(&req(r#"{"workload":"gap.pr","scale":"test"}"#)).unwrap();
    assert_eq!(status(&a), "queued");
    assert_eq!(status(&b), "queued");
    assert_eq!(status(&shed), "rejected", "{}", shed.encode());
    assert_eq!(shed.get("reason").unwrap().as_str(), Some("queue-full"));
    assert_eq!(shed.get("queue_capacity").unwrap().as_u64(), Some(2));

    // Accepted work completes once the queue is released.
    h.controller.resume();
    for queued in [&a, &b] {
        let ticket = queued.get("ticket").unwrap().as_u64().unwrap();
        let done = c.wait(ticket).unwrap();
        assert_eq!(status(&done), "done", "{}", done.encode());
    }
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("stats").unwrap().get("rejected").unwrap().as_u64(),
        Some(1)
    );

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    h.handle.join().unwrap();
}

#[test]
fn deadline_expires_mid_run_and_the_server_keeps_serving() {
    let h = start(ServerConfig {
        workers: 1,
        ..Default::default()
    });
    let mut c = Client::connect(&h.addr).expect("connect");

    // A four-core full-scale mix runs far longer than 10ms; the
    // deadline monitor cancels it at an engine epoch boundary.
    let doomed = req(
        r#"{"mix":["spec06.mcf","gap.pr","gap.tc","spec06.xalancbmk"],"scale":"full","temporal":"streamline","deadline_ms":10}"#,
    );
    let resp = c.submit_and_wait(&doomed).unwrap();
    assert_eq!(status(&resp), "deadline-exceeded", "{}", resp.encode());

    // The worker that ran the doomed job is free again: quick work
    // still completes, and the cancellation is visible in the stats.
    let quick = c
        .submit_and_wait(&req(r#"{"workload":"gap.bfs","scale":"test"}"#))
        .unwrap();
    assert_eq!(status(&quick), "done", "{}", quick.encode());
    let stats = c.stats().unwrap();
    assert!(
        stats.get("stats").unwrap().get("cancelled").unwrap().as_u64().unwrap() >= 1,
        "cancelled counter must record the deadline expiry"
    );

    assert_eq!(status(&c.shutdown().unwrap()), "ok");
    drop(c);
    h.handle.join().unwrap();
}

#[test]
fn graceful_drain_loses_no_responses() {
    let h = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        start_paused: true,
        ..Default::default()
    });
    let mut submitter = Client::connect(&h.addr).expect("connect submitter");

    // Four distinct requests pile up behind the paused queue.
    let mut tickets = Vec::new();
    for wl in ["gap.bfs", "gap.tc", "gap.pr", "spec06.bzip2"] {
        let resp = submitter
            .submit(&req(&format!(r#"{{"workload":"{wl}","scale":"test"}}"#)))
            .unwrap();
        assert_eq!(status(&resp), "queued", "{}", resp.encode());
        tickets.push(resp.get("ticket").unwrap().as_u64().unwrap());
    }

    // SHUTDOWN on a second connection: it must block until the queue
    // drains, which only happens once we release the pause.
    let addr = h.addr.clone();
    let shutdown = thread::spawn(move || {
        let mut c = Client::connect(&addr).expect("connect shutdowner");
        c.shutdown().expect("shutdown round-trip")
    });
    thread::sleep(std::time::Duration::from_millis(50));
    h.controller.resume();
    let ack = shutdown.join().expect("shutdown thread");
    assert_eq!(status(&ack), "ok", "{}", ack.encode());

    // Every response accepted before the drain is still collectable.
    for t in tickets {
        let resp = submitter.wait(t).unwrap();
        assert_eq!(status(&resp), "done", "drained ticket {t}: {}", resp.encode());
    }
    // New (uncached) work is shed with a structured reason; already-
    // cached requests would still be served, since they create no work.
    let late = submitter
        .submit(&req(r#"{"workload":"spec06.libquantum","scale":"test"}"#))
        .unwrap();
    assert_eq!(status(&late), "rejected", "{}", late.encode());
    assert_eq!(late.get("reason").unwrap().as_str(), Some("shutting-down"));

    drop(submitter);
    h.handle.join().unwrap();
}

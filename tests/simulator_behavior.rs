//! Integration tests of simulator behaviour that span crates: timing
//! sanity, prefetch accounting, and partition capacity effects.

use streamline_repro::prelude::*;
use streamline_repro::tpsim::{MetaCtx, PartitionSpec, TemporalEvent};
use streamline_repro::tptrace::record::Line;
use streamline_repro::tptrace::TraceBuilder;

/// A trace of `n` dependent loads over a repeated shuffled ring.
fn ring_trace(lines: u64, passes: usize) -> Trace {
    let mut b = TraceBuilder::new("ring", Suite::Spec06);
    for _ in 0..passes {
        for i in 0..lines {
            // Multiplicative ordering scatters the addresses.
            b.dep_load(0x1000, (i.wrapping_mul(2654435761) % lines) * 64 + (1 << 40));
        }
    }
    b.finish()
}

#[test]
fn dependent_chains_are_slower_than_independent_scans() {
    let mut dep = TraceBuilder::new("dep", Suite::Spec06);
    let mut ind = TraceBuilder::new("ind", Suite::Spec06);
    for i in 0..30_000u64 {
        let a = (i.wrapping_mul(2654435761) % 30_000) * 64 + (1 << 40);
        dep.dep_load(1, a);
        ind.load(1, a);
    }
    let run = |t: Trace| {
        Engine::new(SystemConfig::single_core(), vec![CorePlan::bare(t)])
            .run()
            .cores[0]
            .ipc()
    };
    let dep_ipc = run(dep.finish());
    let ind_ipc = run(ind.finish());
    assert!(
        ind_ipc > dep_ipc * 3.0,
        "MLP should dominate: dep {dep_ipc} vs ind {ind_ipc}"
    );
}

#[test]
fn prefetch_usefulness_accounting_balances() {
    let w = workloads::by_name("spec06.xalancbmk").unwrap();
    let exp = Experiment::new(Scale::Test)
        .l1(L1Kind::Stride)
        .temporal(TemporalKind::Streamline);
    let r = run_single(&w, &exp);
    let c = &r.cores[0];
    // Useful + useless resolved fills can never exceed issued fills.
    let resolved = c.l2_useful_by_origin[2] + c.l2_useless_by_origin[2];
    assert!(
        resolved <= c.l2_fills_by_origin[2],
        "resolved {} > fills {}",
        resolved,
        c.l2_fills_by_origin[2]
    );
    assert!(c.temporal.prefetches_issued >= c.l2_fills_by_origin[2] as u64);
}

#[test]
fn reserving_llc_capacity_costs_data_hits() {
    // A raw TemporalPrefetcher stub that reserves 8 ways everywhere and
    // never prefetches: pure capacity cost.
    struct Hog;
    impl TemporalPrefetcher for Hog {
        fn name(&self) -> &'static str {
            "hog"
        }
        fn on_event(
            &mut self,
            _ctx: &mut MetaCtx,
            _ev: TemporalEvent,
            _out: &mut Vec<Line>,
        ) {
        }
        fn partition(&self) -> PartitionSpec {
            PartitionSpec::Ways { ways: 8 }
        }
        fn stats(&self) -> streamline_repro::tpsim::TemporalStats {
            Default::default()
        }
    }
    // Working set sized to fit a 2MB LLC but not a 1MB one.
    let trace = ring_trace(24_000, 4);
    let base = Engine::new(
        SystemConfig::single_core(),
        vec![CorePlan::bare(trace.clone())],
    )
    .run();
    let hogged = Engine::new(
        SystemConfig::single_core(),
        vec![CorePlan::bare(trace).with_temporal(Box::new(Hog))],
    )
    .run();
    assert!(
        hogged.cores[0].ipc() < base.cores[0].ipc() * 0.98,
        "halving the LLC must hurt an LLC-resident working set: {} vs {}",
        hogged.cores[0].ipc(),
        base.cores[0].ipc()
    );
}

#[test]
fn temporal_event_stream_includes_prefetch_hits() {
    // Train on a stable ring larger than the L2 (so accesses keep
    // missing it); after coverage kicks in, the prefetcher keeps seeing
    // events (prefetch hits), so lookups keep growing.
    let trace = ring_trace(16_000, 6);
    let r = Engine::new(
        SystemConfig::single_core(),
        vec![CorePlan::bare(trace).with_temporal(Box::new(Streamline::new()))],
    )
    .run();
    let t = r.cores[0].temporal;
    assert!(
        t.trigger_lookups as f64 > r.cores[0].l2.misses as f64,
        "prefetch hits must keep training alive: lookups {} vs misses {}",
        t.trigger_lookups,
        r.cores[0].l2.misses
    );
    assert!(r.cores[0].temporal_coverage() > 0.3);
}

#[test]
fn metadata_traffic_is_charged_to_the_llc() {
    // Large enough that the ring never settles into the L2/LLC: events
    // keep flowing and warm store lookups hit (reads are charged on
    // hits — the tag check itself is free).
    let trace = ring_trace(48_000, 4);
    let r = Engine::new(
        SystemConfig::single_core(),
        vec![CorePlan::bare(trace).with_temporal(Box::new(Streamline::new()))],
    )
    .run();
    let t = r.cores[0].temporal;
    assert!(t.meta_reads > 0, "stream reads must be charged");
    assert!(t.meta_writes > 0, "stream writes must be charged");
    // One write per completed stream entry: far fewer writes than the
    // trace has accesses (the stream format's amortisation).
    assert!(t.meta_writes < 48_000 * 4 / 2);
}

#[test]
fn triangel_rearrangement_traffic_is_visible_end_to_end() {
    // Alternate an irregular phase with a regular phase so Triangel's
    // set dueling resizes, which must show up as rearranged blocks.
    let mut b = TraceBuilder::new("phase", Suite::Spec06);
    for round in 0..6 {
        if round % 2 == 0 {
            for i in 0..40_000u64 {
                b.dep_load(1, (i.wrapping_mul(2654435761) % 40_000) * 64 + (1 << 41));
            }
        } else {
            for i in 0..40_000u64 {
                b.load(2, (i % 1_000) * 2048 * 64 + (1 << 42));
            }
        }
    }
    let r = Engine::new(
        SystemConfig::single_core(),
        vec![CorePlan::bare(b.finish()).with_temporal(Box::new(Triangel::new()))],
    )
    .run();
    let t = r.cores[0].temporal;
    // Not all phase mixes force a resize, but traffic accounting must be
    // wired: if it resized, blocks moved.
    if t.resizes > 0 {
        assert!(t.rearranged_blocks > 0, "resize must shuffle metadata");
    }
}

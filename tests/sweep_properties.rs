//! Property tests for the sweep runner's scheduling machinery: for
//! arbitrary job lists and worker counts, no job is lost or duplicated,
//! results come back in canonical (submission) order, and cache hits
//! are indistinguishable from fresh runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use streamline_repro::prelude::*;
use streamline_repro::tpharness::sweep::{SweepJob, SweepRunner};
use tpcheck::{check, ensure};

/// `map` over an arbitrary item list with an arbitrary worker count
/// returns exactly one output per item, in item order.
#[test]
fn map_loses_nothing_and_keeps_order() {
    check("map keeps every item in order", 64, |g| {
        let items = g.vec(0..300, |g| g.u64_in(0..1_000_000));
        let workers = g.usize_in(1..9);
        let runner = SweepRunner::new().with_workers(workers);
        let calls = AtomicUsize::new(0);
        let out = runner.map(&items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            // Unequal per-item cost skews which worker gets which item,
            // exercising out-of-order completion.
            let mut acc = x;
            for _ in 0..(x % 97) {
                acc = acc.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
            }
            (i, x, acc)
        });
        ensure!(
            calls.load(Ordering::Relaxed) == items.len(),
            "{} calls for {} items ({workers} workers)",
            calls.load(Ordering::Relaxed),
            items.len()
        );
        ensure!(out.len() == items.len(), "lost or duplicated outputs");
        for (i, &(oi, ox, _)) in out.iter().enumerate() {
            ensure!(oi == i, "slot {i} holds output {oi}");
            ensure!(ox == items[i], "slot {i} holds the wrong item");
        }
        Ok(())
    });
}

/// `map` output is a pure function of the item list: any two worker
/// counts produce identical output vectors.
#[test]
fn map_is_worker_count_independent() {
    check("map ignores worker count", 32, |g| {
        let items = g.vec(1..200, |g| g.u64_in(0..1_000));
        let wa = g.usize_in(1..9);
        let wb = g.usize_in(1..9);
        let f = |i: usize, x: &u64| x.wrapping_mul(31).wrapping_add(i as u64);
        let a = SweepRunner::new().with_workers(wa).map(&items, f);
        let b = SweepRunner::new().with_workers(wb).map(&items, f);
        ensure!(a == b, "{wa} vs {wb} workers disagreed");
        Ok(())
    });
}

/// For arbitrary job sequences drawn from a small pool (with
/// duplicates), `run` returns, at every position, exactly the report a
/// direct serial run of that job would produce — whether the job was
/// freshly simulated, deduplicated within the batch, or served from the
/// cache of an earlier batch.
#[test]
fn run_matches_reference_for_arbitrary_job_sequences() {
    let base = Experiment::new(Scale::Test).l1(L1Kind::Stride);
    let pool: Vec<SweepJob> = [
        ("spec06.bzip2", TemporalKind::None),
        ("spec06.bzip2", TemporalKind::Streamline),
        ("gap.tc", TemporalKind::Triangel),
    ]
    .iter()
    .map(|&(name, kind)| {
        SweepJob::single(
            workloads::by_name(name).unwrap(),
            base.clone().temporal(kind),
        )
    })
    .collect();
    // Reference reports from plain serial runs, one per distinct job.
    let reference: Vec<String> = pool
        .iter()
        .map(|j| match j {
            SweepJob::Single { workload, exp } => format!("{:?}", run_single(workload, exp)),
            SweepJob::Mix { .. } => unreachable!(),
        })
        .collect();
    // One shared runner across cases: later cases hit the cache, which
    // must be indistinguishable from the fresh simulations of case 0.
    let runner = SweepRunner::new();
    check("run matches reference per position", 24, |g| {
        let picks = g.vec(1..12, |g| g.usize_in(0..3));
        let jobs: Vec<SweepJob> = picks.iter().map(|&p| pool[p].clone()).collect();
        let reports = runner.run(&jobs);
        ensure!(reports.len() == jobs.len(), "report count mismatch");
        for (slot, (&p, r)) in picks.iter().zip(&reports).enumerate() {
            ensure!(
                format!("{r:?}") == reference[p],
                "slot {slot} (pool job {p}) differs from its reference run"
            );
        }
        Ok(())
    });
    assert_eq!(runner.cached_jobs(), pool.len(), "cache holds one entry per distinct key");
}

//! Integration tests for the shared trace pool: single-flight
//! generation, byte-capped eviction, the `TPSIM_TRACE_CACHE_MB` knob,
//! and the headline guarantee — an experiment sweep over one workload
//! generates its trace exactly once.
//!
//! The pool under test is the **process-global** one
//! (`tptrace::pool::global()`), shared by every test in this binary and
//! mutated via `clear()`/`set_capacity_bytes`, so all tests serialize
//! through [`pool_lock`]. Rust runs each integration-test *file* as its
//! own process, so nothing outside this file can race the pool.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use streamline_repro::prelude::*;
use streamline_repro::tpharness::sweep::{SweepJob, SweepRunner};
use streamline_repro::tptrace::pool;

/// Serializes every test in this file around the global pool, and
/// resets the pool's contents (counters persist; tests diff them).
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        // A previous test's assertion failure poisons the mutex; the
        // pool itself is still sound (clear() below resets it).
        Err(poisoned) => poisoned.into_inner(),
    };
    pool::global().clear();
    pool::global().set_capacity_bytes(pool::DEFAULT_CAPACITY_BYTES);
    guard
}

#[test]
fn concurrent_requests_share_one_arc_and_one_generation() {
    let _guard = pool_lock();
    let w = workloads::by_name("gap.cc").unwrap();
    let before = pool::global().stats();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let w = w.clone();
            std::thread::spawn(move || w.generate_shared(Scale::Test))
        })
        .collect();
    let traces: Vec<Arc<Trace>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let after = pool::global().stats();
    assert!(
        traces.windows(2).all(|p| Arc::ptr_eq(&p[0], &p[1])),
        "all 8 threads must receive the identical allocation"
    );
    assert_eq!(
        after.generations - before.generations,
        1,
        "single-flight: 8 concurrent requests, 1 generator run"
    );
    assert_eq!(after.misses - before.misses, 1, "one miss charged");
    assert_eq!(after.hits - before.hits, 7, "seven waiters count as hits");
}

#[test]
fn repeated_generate_shared_is_pointer_identical_and_private_generate_is_not() {
    let _guard = pool_lock();
    let w = workloads::by_name("gap.sssp").unwrap();
    let a = w.generate_shared(Scale::Test);
    let b = w.generate_shared(Scale::Test);
    assert!(Arc::ptr_eq(&a, &b), "same key -> same allocation");

    // Different scale is a different key.
    let c = w.generate_shared(Scale::Small);
    assert!(!Arc::ptr_eq(&a, &c));

    // The private path bypasses the pool but replays identically.
    let private = w.generate(Scale::Test);
    assert_eq!(private, *a, "pooled and private traces are equal");
}

#[test]
fn eviction_respects_the_byte_cap() {
    let _guard = pool_lock();
    let wb = workloads::by_name("gap.bc").unwrap();
    let wt = workloads::by_name("gap.tc").unwrap();
    let b_bytes = wb.generate_shared(Scale::Test).resident_bytes();
    let t_bytes = wt.generate_shared(Scale::Test).resident_bytes();
    pool::global().clear();

    // A cap that fits either trace alone but never both: the second
    // insert must evict the first (LRU).
    let cap = b_bytes.max(t_bytes) + 1024;
    assert!(cap < b_bytes + t_bytes, "test traces must not be tiny");
    pool::global().set_capacity_bytes(cap);
    let before = pool::global().stats();
    let _b = wb.generate_shared(Scale::Test);
    let _t = wt.generate_shared(Scale::Test);
    let after = pool::global().stats();
    assert!(
        after.evictions > before.evictions,
        "second insert must evict under the cap"
    );
    assert!(
        after.resident_bytes <= cap as u64,
        "resident bytes {} exceed the cap {cap}",
        after.resident_bytes
    );

    // The evicted key regenerates on the next request (counted).
    let regen_before = pool::global().stats().generations;
    let again = wb.generate_shared(Scale::Test);
    assert_eq!(pool::global().stats().generations, regen_before + 1);
    assert_eq!(again.name(), "gap_bc");
}

#[test]
fn trace_cache_mb_env_knob_resizes_the_global_pool() {
    let _guard = pool_lock();
    std::env::set_var("TPSIM_TRACE_CACHE_MB", "7");
    streamline_repro::tpharness::jobs::configure_trace_pool();
    assert_eq!(pool::global().capacity_bytes(), 7 << 20);

    // Unset and garbage values leave the capacity untouched.
    std::env::set_var("TPSIM_TRACE_CACHE_MB", "not-a-number");
    streamline_repro::tpharness::jobs::configure_trace_pool();
    assert_eq!(pool::global().capacity_bytes(), 7 << 20);
    std::env::remove_var("TPSIM_TRACE_CACHE_MB");
    streamline_repro::tpharness::jobs::configure_trace_pool();
    assert_eq!(pool::global().capacity_bytes(), 7 << 20);
}

#[test]
fn four_experiment_sweep_generates_the_trace_exactly_once() {
    let _guard = pool_lock();
    let w = workloads::by_name("gap.pr").unwrap();
    let before = pool::global().stats();

    // Four distinct experiment fingerprints (the sweep cache cannot
    // collapse them) over one workload, fanned out over 4 workers.
    let jobs: Vec<SweepJob> = [1.0, 1.25, 1.5, 1.75]
        .iter()
        .map(|&bw| {
            SweepJob::single(
                w.clone(),
                Experiment::new(Scale::Test).l1(L1Kind::Stride).bandwidth(bw),
            )
        })
        .collect();
    let reports = SweepRunner::new().with_workers(4).run(&jobs);
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().all(|r| r.cores[0].instructions > 0));

    let after = pool::global().stats();
    assert_eq!(
        after.generations - before.generations,
        1,
        "a sweep over one workload must generate its trace once"
    );
}

#[test]
fn mix_sharing_one_workload_replays_one_allocation_per_core_pair() {
    let _guard = pool_lock();
    let w = workloads::by_name("gap.bfs").unwrap();
    let before = pool::global().stats();
    // Two cores, same workload: the engine's two plans hold the same
    // Arc, so resident bytes count the trace once.
    let mix = streamline_repro::tptrace::Mix {
        index: 0,
        workloads: vec![w.clone(), w.clone()],
    };
    let r = run_mix(&mix, &Experiment::new(Scale::Test).l1(L1Kind::Stride));
    assert_eq!(r.cores.len(), 2);
    let after = pool::global().stats();
    assert_eq!(after.generations - before.generations, 1);
    assert_eq!(after.entries, 1, "one pooled entry covers both cores");
}
